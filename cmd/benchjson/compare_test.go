package main

import "testing"

func doc(pairs ...any) document {
	var d document
	for i := 0; i < len(pairs); i += 2 {
		d.Results = append(d.Results, result{
			Name:    pairs[i].(string),
			NsPerOp: pairs[i+1].(float64),
		})
	}
	return d
}

func TestCompareDocsWithinThreshold(t *testing.T) {
	old := doc("Load", 100.0, "Store", 10.0)
	new := doc("Load", 114.0, "Store", 9.0)
	regs, missing := compareDocs(old, new, 0.15)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("want clean compare, got regs=%v missing=%v", regs, missing)
	}
}

func TestCompareDocsFlagsRegression(t *testing.T) {
	old := doc("Load", 100.0, "Store", 10.0)
	new := doc("Load", 116.0, "Store", 10.0)
	regs, missing := compareDocs(old, new, 0.15)
	if len(missing) != 0 {
		t.Fatalf("unexpected missing: %v", missing)
	}
	if len(regs) != 1 || regs[0].Name != "Load" {
		t.Fatalf("want Load regression, got %v", regs)
	}
	if g := regs[0].Growth; g < 0.159 || g > 0.161 {
		t.Errorf("growth = %v, want ~0.16", g)
	}
}

func TestCompareDocsFlagsMissingBenchmark(t *testing.T) {
	old := doc("Load", 100.0, "Store", 10.0)
	new := doc("Load", 100.0)
	regs, missing := compareDocs(old, new, 0.15)
	if len(regs) != 0 {
		t.Fatalf("unexpected regs: %v", regs)
	}
	if len(missing) != 1 || missing[0] != "Store" {
		t.Fatalf("want Store missing, got %v", missing)
	}
}

func TestCompareDocsIgnoresNewBenchmarks(t *testing.T) {
	old := doc("Load", 100.0)
	new := doc("Load", 100.0, "Contended8", 500.0)
	regs, missing := compareDocs(old, new, 0.15)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("added benchmark must not trip the gate: regs=%v missing=%v", regs, missing)
	}
}
