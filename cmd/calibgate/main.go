// Command calibgate runs the cross-paper calibration suite and gates
// on drift, the same way benchjson -compare gates perf regressions.
//
// It measures the simulator's G1 latency/bandwidth/amplification
// metrics (internal/calib), prints the per-dataset relative-error
// tables against the published studies, and — with -compare — fails
// when any metric moved past -threshold relative to the committed
// golden.
//
// Usage:
//
//	calibgate                          print the markdown error tables
//	calibgate -o report.json -md t.md  also write the CI artifacts
//	calibgate -compare CALIB_golden.json -threshold 0.10
//	                                   exit 1 if any metric drifted
//	calibgate -update CALIB_golden.json
//	                                   refresh the golden from the
//	                                   current simulator (review the
//	                                   diff: the calibration moved)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"optanesim/internal/calib"
)

func main() {
	compare := flag.String("compare", "", "golden file to gate against (exit 1 on drift)")
	threshold := flag.Float64("threshold", 0.10, "relative drift tolerated per metric with -compare")
	update := flag.String("update", "", "write a fresh golden to this path and exit")
	jsonOut := flag.String("o", "", "write the full calibration report (JSON) to this path")
	mdOut := flag.String("md", "", "write the markdown error tables to this path")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "calibgate: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*compare, *threshold, *update, *jsonOut, *mdOut); err != nil {
		fmt.Fprintln(os.Stderr, "calibgate:", err)
		os.Exit(1)
	}
}

func run(compare string, threshold float64, update, jsonOut, mdOut string) error {
	if threshold < 0 {
		return fmt.Errorf("-threshold must be non-negative, got %v", threshold)
	}
	sim := calib.Measure()

	if update != "" {
		data, err := json.MarshalIndent(calib.NewGolden(sim), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(update, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d metrics)\n", update, len(sim))
		return nil
	}

	rep := calib.BuildReport(sim)
	md := rep.Markdown()
	fmt.Print(md)
	if jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if mdOut != "" {
		if err := os.WriteFile(mdOut, []byte(md), 0o644); err != nil {
			return err
		}
	}

	if compare == "" {
		return nil
	}
	data, err := os.ReadFile(compare)
	if err != nil {
		return err
	}
	golden, err := calib.ParseGolden(data)
	if err != nil {
		return err
	}
	drifts := calib.CompareGolden(golden, sim, threshold)
	if len(drifts) > 0 {
		fmt.Println()
		for _, d := range drifts {
			fmt.Println("DRIFT", d)
		}
		return fmt.Errorf("%d metric(s) drifted past %.0f%% vs %s (refresh with -update if the model change is intended)",
			len(drifts), 100*threshold, compare)
	}
	fmt.Printf("\ncalibration holds: %d metrics within %.0f%% of %s\n", len(sim), 100*threshold, compare)
	return nil
}
