// Command pmsim runs a workload script (see internal/script for the
// tiny language) on the simulated Optane testbed and prints per-thread
// latency plus a full activity report.
//
// Usage:
//
//	pmsim workload.pmsim
//	pmsim -            # read the script from stdin
//	pmsim -crashmatrix # run the power-failure injection matrix instead
//
// Example script:
//
//	gen g1
//	region store pm 64M
//	thread writer
//	  loop 1000
//	    loaddep store rand
//	    store store last
//	    clwb store last
//	    sfence
//	  end
//	end
//
// With -crashmatrix, pmsim skips the script engine and sweeps the
// crash-injection matrix over every persistent index (btree, cceh,
// radix, kvstore), exiting non-zero if any enumerated post-crash image
// fails its structure's recovery check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"optanesim/internal/bench"
	"optanesim/internal/runner"
	"optanesim/internal/script"
)

var (
	crashMatrix = flag.Bool("crashmatrix", false, "run the power-failure injection matrix over all persistent indexes")
	quick       = flag.Bool("quick", false, "with -crashmatrix: reduced-scale traces")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmsim <script.pmsim | -> | pmsim -crashmatrix [-quick]")
	}
	flag.Parse()
	if *crashMatrix {
		os.Exit(runCrashMatrix())
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	prog, err := script.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	res, err := script.Run(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d cycles\n\n", res.EndCycles)
	for _, t := range res.Threads {
		fmt.Printf("thread %-12s %10d ops  %12d cycles  (%.1f cycles/op)\n",
			t.Name, t.Ops, t.Cycles, float64(t.Cycles)/float64(t.Ops))
	}
	fmt.Println()
	fmt.Print(res.Report)
}

// runCrashMatrix executes the crashmatrix experiment units on the
// worker pool and reports per-structure outcomes.
func runCrashMatrix() int {
	units, _ := bench.ExperimentUnits("crashmatrix", bench.Options{Quick: *quick})
	tasks := make([]runner.Task, len(units))
	for i, u := range units {
		u := u
		tasks[i] = runner.Task{ID: u.ID(), Run: func() (any, error) { return u.Run(), nil }}
	}
	failed := false
	for _, r := range runner.Run(tasks, 0) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "pmsim: %s: %v\n", r.ID, r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Value.(bench.UnitResult).Text)
	}
	if failed {
		return 1
	}
	return 0
}
