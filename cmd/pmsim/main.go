// Command pmsim runs a workload script (see internal/script for the
// tiny language) on the simulated Optane testbed and prints per-thread
// latency plus a full activity report.
//
// Usage:
//
//	pmsim [-trace-out f] [-events-out f] [-sample-out f] [-sample-every N] workload.pmsim
//	pmsim -            # read the script from stdin
//	pmsim -crashmatrix # run the power-failure injection matrix instead
//
// The telemetry flags record the run's introspection layer (see
// internal/telemetry): -trace-out writes a Chrome trace-event timeline
// (loadable in Perfetto), -events-out the raw event stream and
// -sample-out the gauge time-series, both as JSON lines.
//
// Example script:
//
//	gen g1
//	region store pm 64M
//	thread writer
//	  loop 1000
//	    loaddep store rand
//	    store store last
//	    clwb store last
//	    sfence
//	  end
//	end
//
// With -crashmatrix, pmsim skips the script engine and sweeps the
// crash-injection matrix over every persistent index (btree, cceh,
// radix, kvstore), exiting non-zero if any enumerated post-crash image
// fails its structure's recovery check.
//
// With -replay, pmsim skips the script engine and replays an external
// memory-access trace (see internal/replay for the Cori- and
// Ramulator-style line formats) on the testbed:
//
//	pmsim -replay trace.cori -gen g1 -threads 2 -passes 3
//	pmsim -replay - -format ram -lenient   # trace from stdin
//
// With -faultmatrix, pmsim sweeps the runtime fault-injection matrix
// (media UEs, thermal throttling, controller stalls — see
// internal/fault) over hardened index read paths and timed workloads.
// Script and replay runs accept -fault SPEC to degrade the simulated
// module, e.g.:
//
//	pmsim -fault 'poison=64,thermal=400000/200000/150' workload.pmsim
//	pmsim -replay trace.cori -fault 'stall=200000/40000,seed=7'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"optanesim/internal/bench"
	"optanesim/internal/fault"
	"optanesim/internal/machine"
	"optanesim/internal/mem"
	"optanesim/internal/replay"
	"optanesim/internal/runner"
	"optanesim/internal/script"
	"optanesim/internal/sim"
	"optanesim/internal/telemetry"
)

var (
	crashMatrix = flag.Bool("crashmatrix", false, "run the power-failure injection matrix over all persistent indexes")
	faultMatrix = flag.Bool("faultmatrix", false, "run the runtime fault-injection matrix (media UEs, thermal, stalls)")
	quick       = flag.Bool("quick", false, "with -crashmatrix/-faultmatrix: reduced-scale traces")
	seed        = flag.Uint64("seed", 0, "with -crashmatrix/-faultmatrix: override the matrix sampling seeds (unit i uses seed+i)")
	faultSpec   = flag.String("fault", "", "degrade the PM module per this fault spec, e.g. 'poison=64,thermal=400000/200000/150,stall=200000/40000,seed=7'")
	traceOut    = flag.String("trace-out", "", "write a Chrome trace-event timeline of the run to this file")
	eventsOut   = flag.String("events-out", "", "write the structured event stream as JSON lines to this file")
	samplesOut  = flag.String("sample-out", "", "write the gauge time-series as JSON lines to this file")
	sampleEvery = flag.Int64("sample-every", int64(telemetry.DefaultSampleEvery), "simulated cycles between gauge samples")

	replayFile   = flag.String("replay", "", "replay this memory-access trace file ('-' for stdin) instead of running a script")
	gen          = flag.String("gen", "g1", "with -replay: testbed generation, g1 or g2")
	replayFormat = flag.String("format", "auto", "with -replay: trace line format, auto, cori or ram")
	threads      = flag.Int("threads", 1, "with -replay: simulated threads the trace ops are assigned to")
	passes       = flag.Int("passes", 1, "with -replay: times each thread replays its op stream")
	assign       = flag.String("assign", "trace", "with -replay: thread assignment policy, trace, addr or rr")
	lenient      = flag.Bool("lenient", false, "with -replay: skip malformed trace lines instead of failing")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmsim <script.pmsim | -> | pmsim -crashmatrix [-quick] [-seed N] | pmsim -faultmatrix [-quick] [-seed N] | pmsim -replay <trace | ->")
	}
	flag.Parse()
	if *crashMatrix {
		os.Exit(runMatrix("crashmatrix"))
	}
	if *faultMatrix {
		os.Exit(runMatrix("faultmatrix"))
	}
	if *replayFile != "" {
		os.Exit(runReplay())
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	prog, err := script.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	var rec *telemetry.Recorder
	if *traceOut != "" || *eventsOut != "" || *samplesOut != "" {
		name := flag.Arg(0)
		if name == "-" {
			name = "stdin"
		}
		rec = telemetry.NewRecorder(name, telemetry.Config{SampleEvery: sim.Cycles(*sampleEvery)})
	}
	inj, err := parseFault()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	res, err := script.RunWith(prog, rec, inj)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := writeTelemetry(rec.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "pmsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("simulated %d cycles\n\n", res.EndCycles)
	for _, t := range res.Threads {
		fmt.Printf("thread %-12s %10d ops  %12d cycles  (%.1f cycles/op)\n",
			t.Name, t.Ops, t.Cycles, float64(t.Cycles)/float64(t.Ops))
	}
	fmt.Println()
	fmt.Print(res.Report)
	printFaultStats(inj)
}

// parseFault builds the -fault injector, or nil when the flag is unset.
func parseFault() (*fault.Injector, error) {
	if *faultSpec == "" {
		return nil, nil
	}
	cfg, err := fault.ParseSpec(*faultSpec)
	if err != nil {
		return nil, err
	}
	return fault.New(cfg), nil
}

// printFaultStats appends the injector's accounting to a run's report.
func printFaultStats(inj *fault.Injector) {
	if inj == nil {
		return
	}
	st := inj.Stats()
	fmt.Printf("\nfaults (%s):\n", inj)
	fmt.Printf("  poison: %d armed, %d media reads hit, %d checked hits, %d unchecked hits, %d scrubbed\n",
		st.PoisonArmed, st.MediaPoisonReads, st.PoisonHits, st.UnreportedHits, st.Scrubbed)
	fmt.Printf("  thermal: %d ops derated (+%d cycles)\n", st.ThrottledOps, st.ThrottleExtraCycles)
	fmt.Printf("  stalls: %d writes paused (%d cycles)\n", st.Stalls, st.StallCycles)
}

// writeTelemetry exports the run's recording to every requested sink.
func writeTelemetry(rec *telemetry.Recording) error {
	writeTo := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, rec)
		}); err != nil {
			return err
		}
	}
	if *eventsOut != "" {
		if err := writeTo(*eventsOut, func(f *os.File) error {
			return telemetry.WriteEventsJSONL(f, rec)
		}); err != nil {
			return err
		}
	}
	if *samplesOut != "" {
		if err := writeTo(*samplesOut, func(f *os.File) error {
			return telemetry.WriteSamplesJSONL(f, rec)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runReplay parses the -replay trace and executes it on the testbed,
// printing per-thread stats and the traffic counters.
func runReplay() int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		return 1
	}
	format, err := replay.ParseFormat(*replayFormat)
	if err != nil {
		return fail(err)
	}
	pol, err := replay.ParseAssign(*assign)
	if err != nil {
		return fail(err)
	}
	var cfg machine.Config
	switch *gen {
	case "g1":
		cfg = machine.G1Config(*threads)
	case "g2":
		cfg = machine.G2Config(*threads)
	default:
		return fail(fmt.Errorf("-gen must be g1 or g2, got %q", *gen))
	}

	in := os.Stdin
	name := "stdin"
	if *replayFile != "-" {
		f, err := os.Open(*replayFile)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in, name = f, *replayFile
	}
	ops, stats, err := replay.ReadAll(in, replay.Options{Format: format, Strict: !*lenient})
	if err != nil {
		return fail(err)
	}
	if len(ops) == 0 {
		return fail(fmt.Errorf("%s: trace has no operations", name))
	}

	inj, err := parseFault()
	if err != nil {
		return fail(err)
	}
	xo := replay.ExecOptions{
		Threads: *threads,
		Passes:  *passes,
		Assign:  pol,
	}
	if inj != nil {
		// Degrade the replay system through the exec hook: faults attach
		// after construction, before the run.
		xo.Run = func(sys *machine.System) sim.Cycles {
			sys.AttachFaults(inj)
			return sys.Run()
		}
	}
	res := replay.Exec(cfg, ops, xo)
	fmt.Printf("replayed %s: %d ops (%s format, %d lines, %d skipped), %d machine ops over %d thread(s), %d pass(es)\n",
		name, stats.Ops, stats.Format, stats.Lines, stats.Skipped, res.Ops, *threads, *passes)
	fmt.Printf("simulated %d cycles\n\n", res.EndCycles)
	for _, t := range res.Threads {
		cpo := 0.0
		if t.Ops > 0 {
			cpo = float64(t.Cycles) / float64(t.Ops)
		}
		fmt.Printf("thread %-12s %10d ops  %12d cycles  (%.1f cycles/op)\n", t.Name, t.Ops, t.Cycles, cpo)
	}
	fmt.Println()
	fmt.Println(res.PM.String())
	printFaultStats(inj)
	return 0
}

// runMatrix executes one injection-matrix experiment (crashmatrix or
// faultmatrix) on the worker pool and reports per-unit outcomes, with
// the typed-error summary (and the sampling seed context a failure
// needs to reproduce) on exit.
func runMatrix(name string) int {
	units, _ := bench.ExperimentUnits(name, bench.Options{Quick: *quick, Seed: *seed})
	tasks := make([]runner.Task, len(units))
	for i, u := range units {
		u := u
		tasks[i] = runner.Task{ID: u.ID(), Run: func() (any, error) { return u.Run(), nil }}
	}
	results := runner.Run(tasks, 0)
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "pmsim: %s: %v\n", r.ID, r.Err)
			continue
		}
		fmt.Println(r.Value.(bench.UnitResult).Text)
	}
	if s := runner.Summarize(results); s.Failed() {
		fmt.Fprintf(os.Stderr, "pmsim: %s: %s", name, s)
		if n := s.Count(mem.IsPoison); n > 0 {
			fmt.Fprintf(os.Stderr, " (%d poison errors)", n)
		}
		if *seed != 0 {
			fmt.Fprintf(os.Stderr, " [seed override %d]", *seed)
		}
		fmt.Fprintln(os.Stderr)
		return 1
	}
	return 0
}
