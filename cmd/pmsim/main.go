// Command pmsim runs a workload script (see internal/script for the
// tiny language) on the simulated Optane testbed and prints per-thread
// latency plus a full activity report.
//
// Usage:
//
//	pmsim [-trace-out f] [-events-out f] [-sample-out f] [-sample-every N] workload.pmsim
//	pmsim -            # read the script from stdin
//	pmsim -crashmatrix # run the power-failure injection matrix instead
//
// The telemetry flags record the run's introspection layer (see
// internal/telemetry): -trace-out writes a Chrome trace-event timeline
// (loadable in Perfetto), -events-out the raw event stream and
// -sample-out the gauge time-series, both as JSON lines.
//
// Example script:
//
//	gen g1
//	region store pm 64M
//	thread writer
//	  loop 1000
//	    loaddep store rand
//	    store store last
//	    clwb store last
//	    sfence
//	  end
//	end
//
// With -crashmatrix, pmsim skips the script engine and sweeps the
// crash-injection matrix over every persistent index (btree, cceh,
// radix, kvstore), exiting non-zero if any enumerated post-crash image
// fails its structure's recovery check.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"optanesim/internal/bench"
	"optanesim/internal/runner"
	"optanesim/internal/script"
	"optanesim/internal/sim"
	"optanesim/internal/telemetry"
)

var (
	crashMatrix = flag.Bool("crashmatrix", false, "run the power-failure injection matrix over all persistent indexes")
	quick       = flag.Bool("quick", false, "with -crashmatrix: reduced-scale traces")
	traceOut    = flag.String("trace-out", "", "write a Chrome trace-event timeline of the run to this file")
	eventsOut   = flag.String("events-out", "", "write the structured event stream as JSON lines to this file")
	samplesOut  = flag.String("sample-out", "", "write the gauge time-series as JSON lines to this file")
	sampleEvery = flag.Int64("sample-every", int64(telemetry.DefaultSampleEvery), "simulated cycles between gauge samples")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pmsim <script.pmsim | -> | pmsim -crashmatrix [-quick]")
	}
	flag.Parse()
	if *crashMatrix {
		os.Exit(runCrashMatrix())
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	prog, err := script.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	var rec *telemetry.Recorder
	if *traceOut != "" || *eventsOut != "" || *samplesOut != "" {
		name := flag.Arg(0)
		if name == "-" {
			name = "stdin"
		}
		rec = telemetry.NewRecorder(name, telemetry.Config{SampleEvery: sim.Cycles(*sampleEvery)})
	}
	res, err := script.RunRecorded(prog, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	if rec != nil {
		if err := writeTelemetry(rec.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "pmsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("simulated %d cycles\n\n", res.EndCycles)
	for _, t := range res.Threads {
		fmt.Printf("thread %-12s %10d ops  %12d cycles  (%.1f cycles/op)\n",
			t.Name, t.Ops, t.Cycles, float64(t.Cycles)/float64(t.Ops))
	}
	fmt.Println()
	fmt.Print(res.Report)
}

// writeTelemetry exports the run's recording to every requested sink.
func writeTelemetry(rec *telemetry.Recording) error {
	writeTo := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, rec)
		}); err != nil {
			return err
		}
	}
	if *eventsOut != "" {
		if err := writeTo(*eventsOut, func(f *os.File) error {
			return telemetry.WriteEventsJSONL(f, rec)
		}); err != nil {
			return err
		}
	}
	if *samplesOut != "" {
		if err := writeTo(*samplesOut, func(f *os.File) error {
			return telemetry.WriteSamplesJSONL(f, rec)
		}); err != nil {
			return err
		}
	}
	return nil
}

// runCrashMatrix executes the crashmatrix experiment units on the
// worker pool and reports per-structure outcomes.
func runCrashMatrix() int {
	units, _ := bench.ExperimentUnits("crashmatrix", bench.Options{Quick: *quick})
	tasks := make([]runner.Task, len(units))
	for i, u := range units {
		u := u
		tasks[i] = runner.Task{ID: u.ID(), Run: func() (any, error) { return u.Run(), nil }}
	}
	failed := false
	for _, r := range runner.Run(tasks, 0) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "pmsim: %s: %v\n", r.ID, r.Err)
			failed = true
			continue
		}
		fmt.Println(r.Value.(bench.UnitResult).Text)
	}
	if failed {
		return 1
	}
	return 0
}
