// Command pmsim runs a workload script (see internal/script for the
// tiny language) on the simulated Optane testbed and prints per-thread
// latency plus a full activity report.
//
// Usage:
//
//	pmsim workload.pmsim
//	pmsim -            # read the script from stdin
//
// Example script:
//
//	gen g1
//	region store pm 64M
//	thread writer
//	  loop 1000
//	    loaddep store rand
//	    store store last
//	    clwb store last
//	    sfence
//	  end
//	end
package main

import (
	"fmt"
	"io"
	"os"

	"optanesim/internal/script"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: pmsim <script.pmsim | ->")
		os.Exit(2)
	}
	var src []byte
	var err error
	if os.Args[1] == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	prog, err := script.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	res, err := script.Run(prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmsim:", err)
		os.Exit(1)
	}
	fmt.Printf("simulated %d cycles\n\n", res.EndCycles)
	for _, t := range res.Threads {
		fmt.Printf("thread %-12s %10d ops  %12d cycles  (%.1f cycles/op)\n",
			t.Name, t.Ops, t.Cycles, float64(t.Cycles)/float64(t.Ops))
	}
	fmt.Println()
	fmt.Print(res.Report)
}
