// Command tracecheck validates a Chrome trace-event file produced by
// optbench/pmsim -trace-out: it parses the JSON, checks the structural
// invariants the exporter guarantees (metadata before data, monotone
// timestamps per track), and optionally asserts that named event types
// appear. CI uses it to keep the telemetry export loadable in Perfetto.
//
// Usage:
//
//	tracecheck [-require name1,name2,...] trace.json
//
// Exit status is non-zero if the file is not a valid trace or a required
// event name is absent.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"optanesim/internal/telemetry"
)

var require = flag.String("require", "", "comma-separated event names that must appear at least once")

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require name1,name2,...] trace.json")
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	n, err := telemetry.ValidateChromeTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	names, err := telemetry.EventNames(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	if *require != "" {
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want == "" {
				continue
			}
			if names[want] == 0 {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: missing required events: %s\n",
				path, strings.Join(missing, ", "))
			fmt.Fprintf(os.Stderr, "tracecheck: present: %s\n", formatNames(names))
			os.Exit(1)
		}
	}
	fmt.Printf("tracecheck: %s: %d events OK (%s)\n", path, n, formatNames(names))
}

// formatNames renders the name histogram deterministically.
func formatNames(names map[string]int) string {
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, names[k]))
	}
	return strings.Join(parts, " ")
}
