// Command optbench regenerates the tables and figures of "Characterizing
// the Performance of Intel Optane Persistent Memory" (EuroSys '22) on
// the optanesim simulator.
//
// Usage:
//
//	optbench [-quick] <experiment>...
//
// where experiment is one of: fig2 fig3 fig4 fig6 fig7 fig8 table1
// fig10 fig12 fig13 fig14 all. -quick runs each experiment at reduced
// scale (useful for smoke tests); the default scale is what
// EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optanesim/internal/bench"
)

var (
	quick   = flag.Bool("quick", false, "run at reduced scale")
	doPlots = flag.Bool("plot", false, "also render ASCII charts of the figures")
)

// experiment names in the paper's order.
var order = []string{
	"fig2", "fig3", "fig4", "fig6", "fig7", "fig8",
	"table1", "fig10", "fig12", "fig13", "fig14", "ablation", "bandwidth", "ycsb", "sec33", "latency", "indexes",
}

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var run []string
	for _, a := range args {
		if a == "all" {
			run = order
			break
		}
		if !known(a) {
			fmt.Fprintf(os.Stderr, "optbench: unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
		run = append(run, a)
	}
	for _, name := range run {
		start := time.Now()
		experiments[name]()
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func known(name string) bool {
	_, ok := experiments[name]
	return ok
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: optbench [-quick] <experiment>...\nexperiments: %v all\n", order)
}

var experiments = map[string]func(){
	"fig2":      runFig2,
	"fig3":      runFig3,
	"fig4":      runFig4,
	"fig6":      runFig6,
	"fig7":      runFig7,
	"fig8":      runFig8,
	"table1":    runTable1,
	"fig10":     runFig10,
	"fig12":     runFig12,
	"fig13":     runFig13,
	"fig14":     runFig14,
	"ablation":  runAblation,
	"bandwidth": runBandwidth,
	"ycsb":      runYCSB,
	"sec33":     runSec33,
	"latency":   runLatency,
	"indexes":   runIndexes,
}

// scale reduces an experiment knob under -quick.
func scale(full, reduced int) int {
	if *quick {
		return reduced
	}
	return full
}

func runFig2() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		pts := bench.Fig2(bench.Fig2Options{Gen: gen, Passes: scale(8, 3)})
		fmt.Printf("[%s] %s\n", gen, bench.FormatFig2(pts))
		if *doPlots {
			plotFig2(gen, pts)
		}
	}
}

func runFig3() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		pts := bench.Fig3(bench.Fig3Options{Gen: gen, Passes: scale(12, 4)})
		fmt.Printf("[%s] %s\n", gen, bench.FormatFig3(pts))
	}
}

func runFig4() {
	pts := bench.Fig4(bench.Fig4Options{Writes: scale(20000, 5000)})
	fmt.Println(bench.FormatFig4(pts))
	if *doPlots {
		plotFig4(pts)
	}
}

func runFig6() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		for _, set := range []bench.PrefetchSetting{
			bench.PFNone, bench.PFHardware, bench.PFAdjacent, bench.PFDCUStreamer,
		} {
			pts := bench.Fig6(bench.Fig6Options{Gen: gen, Setting: set, MaxVisits: scale(40000, 8000)})
			fmt.Println(bench.FormatFig6(gen, set, pts))
		}
	}
}

func runFig7() {
	opts := bench.Fig7Options{Passes: scale(40, 10)}
	if *quick {
		opts.Distances = []int{0, 1, 2, 4, 8, 16, 40}
	}
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		for _, cell := range []struct {
			pm, remote bool
		}{
			{true, false}, {false, false}, {true, true}, {false, true},
		} {
			curves := bench.Fig7Curves(gen, cell.pm, cell.remote, opts)
			fmt.Println(bench.FormatFig7Panel(gen, cell.pm, cell.remote, curves))
			if *doPlots {
				plotFig7(gen, cell.pm, cell.remote, curves)
			}
		}
	}
}

func runFig8() {
	opts := bench.Fig8Options{MaxElements: scale(150000, 30000)}
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		for _, mode := range []bench.Fig8Mode{
			bench.Fig8Strict, bench.Fig8Relaxed, bench.Fig8PureRead, bench.Fig8PureWrite,
		} {
			series := bench.Fig8Panel(gen, mode, opts)
			fmt.Println(bench.FormatFig8(gen, mode, series))
			if *doPlots {
				plotFig8(gen, mode, series)
			}
		}
	}
}

func runTable1() {
	rows := bench.Table1(bench.Table1Options{
		PrebuildKeys:     scale(2_000_000, 500_000),
		InsertsPerThread: scale(2_500, 1_000),
	})
	fmt.Println(bench.FormatTable1(rows))
}

func runFig10() {
	opts := bench.Fig10Options{
		PrebuildKeys: scale(2_000_000, 500_000),
		TotalInserts: scale(12_000, 5_000),
	}
	if *quick {
		opts.Workers = []int{1, 2, 5, 10}
	}
	pts := bench.Fig10(opts)
	fmt.Println(bench.FormatFig10(opts, pts))
	if *doPlots {
		plotFig10("PM", pts)
	}
	opts.OnDRAM = true
	pts = bench.Fig10(opts)
	fmt.Println(bench.FormatFig10(opts, pts))
	if *doPlots {
		plotFig10("DRAM", pts)
	}
	// The paper notes single- and 6-DIMM results are similar at low
	// worker counts; the fade at high counts is a few-DIMM effect (E7).
	opts.OnDRAM = false
	opts.DIMMs = 6
	pts = bench.Fig10(opts)
	fmt.Println("[6 interleaved DIMMs]")
	fmt.Println(bench.FormatFig10(opts, pts))
}

func runFig12() {
	opts := bench.Fig12Options{
		PrebuildKeys:     scale(800_000, 300_000),
		InsertsPerThread: scale(4_000, 1_500),
	}
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		opts.Gen = gen
		pts := bench.Fig12(opts)
		fmt.Println(bench.FormatFig12(gen, pts))
		if *doPlots {
			plotFig12(gen, pts)
		}
	}
}

func runIndexes() {
	o := bench.IndexesOptions{
		PrebuildKeys: scale(600_000, 200_000),
		Ops:          scale(4_000, 1_500),
	}
	fmt.Println(bench.FormatIndexes(o, bench.Indexes(o)))
}

func runSec33() {
	fmt.Println(bench.FormatSec33(bench.Sec33()))
}

func runLatency() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		fmt.Println(bench.FormatLatencyTable(gen, bench.LatencyTable(gen)))
	}
}

func runBandwidth() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		o := bench.BandwidthOptions{Gen: gen, BytesPerThread: scale(2*bench.MB, 512*bench.KB)}
		fmt.Println(bench.FormatBandwidth(o, bench.Bandwidth(o)))
	}
}

func runYCSB() {
	o := bench.YCSBOptions{
		TableKeys: scale(1_000_000, 300_000),
		Ops:       scale(30_000, 8_000),
	}
	fmt.Println(bench.FormatYCSB(o, bench.YCSB(o)))
	o.OnDRAM = true
	fmt.Println(bench.FormatYCSB(o, bench.YCSB(o)))
}

func runAblation() {
	fmt.Println(bench.FormatAblations(bench.Ablations()))
}

func runFig13() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		pts := bench.Fig13(bench.Fig13Options{Gen: gen, MaxVisits: scale(40000, 10000)})
		fmt.Println(bench.FormatFig13(gen, pts))
	}
}

func runFig14() {
	for _, gen := range []bench.Gen{bench.G1, bench.G2} {
		opts := bench.Fig14Options{Gen: gen, BlocksPerThread: scale(6000, 2000)}
		if *quick {
			opts.Threads = []int{1, 2, 4, 8, 12, 16}
		}
		pts := bench.Fig14(opts)
		fmt.Println(bench.FormatFig14(gen, pts))
		if *doPlots {
			plotFig14(gen, pts)
		}
	}
}
