// Command optbench regenerates the tables and figures of "Characterizing
// the Performance of Intel Optane Persistent Memory" (EuroSys '22) on
// the optanesim simulator.
//
// Usage:
//
//	optbench [-quick] [-j N] [-json dir] [-plot] [-timeout D] [-keep-going]
//	         [-cpuprofile f] [-memprofile f] [-progress] [-seed N] [-fault SPEC]
//	         [-device-workers N] [-warm-reuse]
//	         [-trace-out f] [-events-out f] [-sample-out f]
//	         [-breakdown] [-hist-out f]
//	         [-sample-every N] [-event-cap N] [-telemetry-addr a]
//	         <experiment>...
//
// where experiment is one of: fig2 fig3 fig4 fig6 fig7 fig8 table1
// fig10 fig12 fig13 fig14 ablation bandwidth ycsb sec33 latency indexes
// crashmatrix replay faultmatrix tenants all. -quick runs each experiment at
// reduced scale (useful for smoke tests); the default scale is what
// EXPERIMENTS.md records. The replay experiment runs the bundled
// external traces through the internal/replay frontend (see
// EXPERIMENTS.md, "Trace replay & calibration").
//
// -seed N overrides the sampling seeds of the injection matrices
// (crashmatrix, faultmatrix): unit i derives N+i, so a sampled failure
// is reproducible. -fault SPEC (see internal/fault.ParseSpec, e.g.
// 'poison=64,thermal=400000/200000/150') degrades the PM module of
// every metered experiment system — the faultmatrix experiment ignores
// it and builds its own per-cell injectors.
//
// -device-workers N asks the opt-in experiments (bandwidth, fig13,
// fig14) to service DIMM requests on per-DIMM host workers
// (machine.System.SetParallelDevices). Every result — printed tables,
// -json records, and recorded telemetry (events, samples, breakdown
// histograms) alike — is byte-identical to the serial default; the
// request auto-disables on systems carrying fault injection. This is a
// wall-clock knob only.
//
// -warm-reuse lets the sweep families that declare a shared warm prefix
// (fig2's CpX cells, fig13's direct/redirected cells) warm each prefix
// once, snapshot the complete simulator state
// (machine.System.Snapshot), and fork the snapshot per cell instead of
// re-warming every cell from scratch. Results — printed tables, -json
// records, telemetry sinks — are byte-identical to the cold default
// (the CI gate cmps them); the reuse silently degrades to cold runs for
// units carrying telemetry or fault injection. Like -device-workers,
// this is a wall-clock knob only.
//
// Independent experiment units (e.g. the two generations of fig2, the
// eight panels of fig8) execute concurrently on a pool of -j workers,
// each on its own simulator instance. Output order — and, with -json,
// the structured records written as <dir>/<experiment>.jsonl — is
// deterministic and byte-identical for every -j value; only the
// wall-clock lines differ.
//
// The telemetry flags record the simulator's introspection layer (see
// internal/telemetry): -trace-out exports a Chrome trace-event timeline
// loadable in Perfetto, -events-out and -sample-out write the raw event
// stream and gauge time-series as JSON lines, and -telemetry-addr serves
// live /metrics plus /debug/pprof while the sweep runs. -breakdown
// attributes every op's latency to a fixed component vocabulary
// (internal/telemetry's cycle-attribution layer) and prints a
// per-unit, per-tenant table of HDR-histogram quantiles under each
// unit's result; -hist-out writes the same histograms' summaries as
// JSON lines. All recorded output is deterministic across -j values;
// -progress lines (stderr, completion order) and the live endpoint are
// the only unordered output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"optanesim/internal/bench"
	"optanesim/internal/fault"
	"optanesim/internal/mem"
	"optanesim/internal/runner"
)

var (
	quick      = flag.Bool("quick", false, "run at reduced scale")
	doPlots    = flag.Bool("plot", false, "also render ASCII charts of the figures")
	jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "number of experiment units to run concurrently")
	jsonDir    = flag.String("json", "", "also write structured results as <dir>/<experiment>.jsonl")
	timeout    = flag.Duration("timeout", 0, "per-unit deadline (0 = none), e.g. 5m")
	keepGoing  = flag.Bool("keep-going", false, "run every unit even after one fails")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	seed       = flag.Uint64("seed", 0, "override the injection matrices' sampling seeds (unit i uses seed+i)")
	faultSpec  = flag.String("fault", "", "degrade every metered experiment system per this fault spec, e.g. 'poison=64,thermal=400000/200000/150'")
	devWorkers = flag.Int("device-workers", 0, "service DIMM requests on N host workers in the opt-in experiments (0 = serial; results are byte-identical)")
	warmReuse  = flag.Bool("warm-reuse", false, "warm each declared sweep family once and fork snapshots per cell (results are byte-identical)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	order := bench.ExperimentNames()
	var run []string
	for _, a := range args {
		if a == "all" {
			run = order
			break
		}
		if _, ok := bench.ExperimentUnits(a, bench.Options{}); !ok {
			fmt.Fprintf(os.Stderr, "optbench: unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
		run = append(run, a)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(1)
		}
	}
	stopProfiles := startProfiles()
	defer stopProfiles()

	// Flatten every selected experiment's units into one task list so
	// the pool stays busy across experiment boundaries, remembering
	// which result slots belong to which experiment.
	opts := bench.Options{Quick: *quick, Telemetry: telemetryFactory(), Seed: *seed, DeviceWorkers: *devWorkers, WarmReuse: *warmReuse}
	if *faultSpec != "" {
		cfg, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(2)
		}
		opts.Fault = &cfg
	}
	if *jsonDir != "" {
		if err := writeRunHeader(*jsonDir, run); err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(1)
		}
	}
	var tasks []runner.Task
	slots := make(map[string][]int, len(run))
	for _, name := range run {
		units, _ := bench.ExperimentUnits(name, opts)
		for _, u := range units {
			u := u
			slots[name] = append(slots[name], len(tasks))
			tasks = append(tasks, runner.Task{
				ID:  u.ID(),
				Run: func() (any, error) { return u.Run(), nil },
			})
		}
	}

	live, stopLive := startLive(*jobs, len(tasks))
	defer stopLive()

	runCfg := runner.Config{
		Workers:   *jobs,
		Timeout:   *timeout,
		KeepGoing: *keepGoing,
	}
	runnerHooks(&runCfg, live)

	start := time.Now()
	results := runner.RunConfig(tasks, runCfg)

	// Report in the deterministic submission order, not completion
	// order.
	failed := false
	var failures []string
	for _, name := range run {
		var unitResults []bench.UnitResult
		var expResults []runner.Result
		expFailed := false
		for _, i := range slots[name] {
			r := results[i]
			expResults = append(expResults, r)
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "optbench: %s: %v\n", r.ID, r.Err)
				failed, expFailed = true, true
				failures = append(failures, fmt.Sprintf("%s: %s", r.ID, firstLine(r.Err.Error())))
				continue
			}
			ur := r.Value.(bench.UnitResult)
			unitResults = append(unitResults, ur)
			fmt.Println(ur.Text)
			if *breakdown && ur.Telemetry != nil && ur.Telemetry.Breakdown != nil {
				ur.Telemetry.Breakdown.WriteTable(os.Stdout)
				fmt.Println()
			}
			if *doPlots {
				maybePlot(ur)
			}
		}
		// A partial record set would look complete on disk; write only
		// experiments whose every unit succeeded.
		if *jsonDir != "" && !expFailed {
			if err := writeJSONL(*jsonDir, name, unitResults); err != nil {
				fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
				failed = true
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, runner.Wall(expResults).Round(time.Millisecond))
	}
	if telemetryEnabled() {
		if err := writeTelemetrySinks(harvestRecordings(run, slots, results)); err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			failed = true
		}
	}
	fmt.Printf("[total: %d experiments, %d units, -j %d, %v]\n",
		len(run), len(tasks), *jobs, time.Since(start).Round(time.Millisecond))
	if failed {
		// The typed-error summary classifies failures (panics, timeouts,
		// cancellations) and lets poison errors be counted as such.
		s := runner.Summarize(results)
		fmt.Fprintf(os.Stderr, "optbench: %s", s)
		if n := s.Count(mem.IsPoison); n > 0 {
			fmt.Fprintf(os.Stderr, " (%d poison errors)", n)
		}
		fmt.Fprintln(os.Stderr, ":")
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		if !*keepGoing {
			fmt.Fprintln(os.Stderr, "optbench: (units not yet started were canceled; use -keep-going to run all)")
		}
		stopProfiles() // os.Exit skips defers
		os.Exit(1)
	}
}

// startProfiles begins -cpuprofile collection and returns an idempotent
// stop function that finalizes both it and the -memprofile snapshot.
func startProfiles() func() {
	var cpuOut *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			os.Exit(1)
		}
		cpuOut = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuOut != nil {
			pprof.StopCPUProfile()
			cpuOut.Close()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "optbench: %v\n", err)
			}
		}
	}
}

// firstLine truncates multi-line errors (panic stacks) for the summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// writeRunHeader records the knobs that shape a -json run's records as
// <dir>/run.json, so an archived result directory is reproducible from
// its header alone. Only simulation-relevant flags appear — never
// timestamps or -j, which cannot change a byte of the .jsonl files
// (device_workers cannot either, but it is the claim CI's cmp gate
// checks, so the header states it). The telemetry knobs — sample
// period, event-ring capacity, breakdown recording — shape the
// recorded telemetry sinks, so the header pins them too.
func writeRunHeader(dir string, run []string) error {
	hdr := struct {
		Quick         bool     `json:"quick"`
		Seed          uint64   `json:"seed"`
		Fault         string   `json:"fault,omitempty"`
		DeviceWorkers int      `json:"device_workers"`
		WarmReuse     bool     `json:"warm_reuse"`
		SampleEvery   int64    `json:"sample_every"`
		EventCap      int      `json:"event_cap"`
		Breakdown     bool     `json:"breakdown"`
		Experiments   []string `json:"experiments"`
	}{*quick, *seed, *faultSpec, *devWorkers, *warmReuse, *sampleEvery, *eventCap, breakdownEnabled(), run}
	data, err := json.MarshalIndent(hdr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "run.json"), append(data, '\n'), 0o644)
}

// writeJSONL writes one experiment's structured records as JSON lines.
func writeJSONL(dir, name string, results []bench.UnitResult) error {
	data, err := bench.EncodeJSONL(results)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".jsonl"), data, 0o644)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: optbench [-quick] [-j N] [-json dir] [-plot] [-timeout D] [-keep-going] [-cpuprofile f] [-memprofile f] [-progress] [-seed N] [-fault SPEC] [-device-workers N] [-warm-reuse] [-trace-out f] [-events-out f] [-sample-out f] [-breakdown] [-hist-out f] [-sample-every N] [-event-cap N] [-telemetry-addr a] <experiment>...\nexperiments: %v all\n",
		bench.ExperimentNames())
}
