package main

import (
	"fmt"

	"optanesim/internal/bench"
	"optanesim/internal/plot"
)

// maybePlot renders the ASCII chart(s) for unit results whose figures
// have a plotted form. The unit label (e.g. "G1", "G1 local PM")
// becomes part of the chart title.
func maybePlot(r bench.UnitResult) {
	switch data := r.Data.(type) {
	case []bench.Fig2Point:
		if r.Experiment == "fig2" {
			plotFig2(r.Unit, data)
		}
	case []bench.Fig4Point:
		plotFig4(data)
	case []bench.Fig7Curve:
		plotFig7(r.Unit, data)
	case []bench.Fig8Series:
		plotFig8(r.Unit, data)
	case []bench.Fig10Point:
		plotFig10(r.Unit, data)
	case []bench.Fig12Point:
		plotFig12(r.Unit, data)
	case []bench.Fig14Point:
		plotFig14(r.Unit, data)
	}
}

// plotFig2 draws the RA curves like the paper's Fig. 2.
func plotFig2(label string, pts []bench.Fig2Point) {
	series := make([]plot.Series, 4)
	for cpx := 1; cpx <= 4; cpx++ {
		s := plot.Series{Label: fmt.Sprintf("%d cacheline(s)", cpx)}
		for _, p := range pts {
			s.X = append(s.X, float64(p.WSSBytes))
			s.Y = append(s.Y, p.RA[cpx-1])
		}
		series[cpx-1] = s
	}
	fmt.Println(plot.Render(plot.Options{
		Title: fmt.Sprintf("Fig. 2 (%s): read amplification vs WSS", label), XLabel: "WSS", YLabel: "RA",
	}, series...))
}

// plotFig4 draws the hit-ratio curves.
func plotFig4(pts []bench.Fig4Point) {
	g1 := plot.Series{Label: "G1 Optane"}
	g2 := plot.Series{Label: "G2 Optane"}
	for _, p := range pts {
		g1.X = append(g1.X, float64(p.WSSBytes))
		g1.Y = append(g1.Y, p.HitRatio[bench.G1])
		g2.X = append(g2.X, float64(p.WSSBytes))
		g2.Y = append(g2.Y, p.HitRatio[bench.G2])
	}
	fmt.Println(plot.Render(plot.Options{
		Title: "Fig. 4: write-buffer hit ratio vs WSS", XLabel: "WSS", YLabel: "hit ratio",
	}, g1, g2))
}

// plotFig7 draws one panel's RAP curves.
func plotFig7(label string, curves []bench.Fig7Curve) {
	var series []plot.Series
	for _, c := range curves {
		s := plot.Series{Label: c.Variant}
		for _, p := range c.Points {
			s.X = append(s.X, float64(p.Distance))
			s.Y = append(s.Y, p.Cycles)
		}
		series = append(series, s)
	}
	fmt.Println(plot.Render(plot.Options{
		Title:  fmt.Sprintf("Fig. 7 (%s): RAP latency", label),
		XLabel: "distance (cachelines)", YLabel: "cycles/iter",
	}, series...))
}

// plotFig8 draws one panel's latency curves.
func plotFig8(label string, series []bench.Fig8Series) {
	var ps []plot.Series
	for _, s := range series {
		p := plot.Series{Label: s.Label}
		for _, pt := range s.Points {
			p.X = append(p.X, float64(pt.WSSBytes))
			p.Y = append(p.Y, pt.Cycles)
		}
		ps = append(ps, p)
	}
	fmt.Println(plot.Render(plot.Options{
		Title:  fmt.Sprintf("Fig. 8 (%s): cycles per element vs WSS", label),
		XLabel: "WSS", YLabel: "cycles", LogX: true,
	}, ps...))
}

// plotFig10 draws the latency and throughput panels.
func plotFig10(dev string, pts []bench.Fig10Point) {
	lat0 := plot.Series{Label: "base"}
	lat1 := plot.Series{Label: "with prefetching"}
	thr0 := plot.Series{Label: "base"}
	thr1 := plot.Series{Label: "with prefetching"}
	for _, p := range pts {
		x := float64(p.Workers)
		lat0.X, lat0.Y = append(lat0.X, x), append(lat0.Y, p.BaseCycles)
		lat1.X, lat1.Y = append(lat1.X, x), append(lat1.Y, p.HelpCycles)
		thr0.X, thr0.Y = append(thr0.X, x), append(thr0.Y, p.BaseMops)
		thr1.X, thr1.Y = append(thr1.X, x), append(thr1.Y, p.HelpMops)
	}
	fmt.Println(plot.Render(plot.Options{
		Title: "Fig. 10: CCEH insert latency on " + dev, XLabel: "workers", YLabel: "cycles",
	}, lat0, lat1))
	fmt.Println(plot.Render(plot.Options{
		Title: "Fig. 10: CCEH throughput on " + dev, XLabel: "workers", YLabel: "Mops/s",
	}, thr0, thr1))
}

// plotFig12 draws one generation's panels.
func plotFig12(label string, pts []bench.Fig12Point) {
	lat0 := plot.Series{Label: "in-place"}
	lat1 := plot.Series{Label: "redo log"}
	thr0 := plot.Series{Label: "in-place"}
	thr1 := plot.Series{Label: "redo log"}
	for _, p := range pts {
		x := float64(p.Threads)
		lat0.X, lat0.Y = append(lat0.X, x), append(lat0.Y, p.InPlaceCycles)
		lat1.X, lat1.Y = append(lat1.X, x), append(lat1.Y, p.RedoCycles)
		thr0.X, thr0.Y = append(thr0.X, x), append(thr0.Y, p.InPlaceMops)
		thr1.X, thr1.Y = append(thr1.X, x), append(thr1.Y, p.RedoMops)
	}
	fmt.Println(plot.Render(plot.Options{
		Title: fmt.Sprintf("Fig. 12 (%s): B+-tree insert latency", label), XLabel: "threads", YLabel: "cycles",
	}, lat0, lat1))
	fmt.Println(plot.Render(plot.Options{
		Title: fmt.Sprintf("Fig. 12 (%s): B+-tree throughput", label), XLabel: "threads", YLabel: "Mops/s",
	}, thr0, thr1))
}

// plotFig14 draws one generation's tradeoff panels.
func plotFig14(label string, pts []bench.Fig14Point) {
	lat0 := plot.Series{Label: "with prefetching"}
	lat1 := plot.Series{Label: "optimized"}
	thr0 := plot.Series{Label: "with prefetching"}
	thr1 := plot.Series{Label: "optimized"}
	for _, p := range pts {
		x := float64(p.Threads)
		lat0.X, lat0.Y = append(lat0.X, x), append(lat0.Y, p.BaseCycles)
		lat1.X, lat1.Y = append(lat1.X, x), append(lat1.Y, p.OptCycles)
		thr0.X, thr0.Y = append(thr0.X, x), append(thr0.Y, p.BaseGBs)
		thr1.X, thr1.Y = append(thr1.X, x), append(thr1.Y, p.OptGBs)
	}
	fmt.Println(plot.Render(plot.Options{
		Title: fmt.Sprintf("Fig. 14 (%s): latency", label), XLabel: "threads", YLabel: "cycles/block",
	}, lat0, lat1))
	fmt.Println(plot.Render(plot.Options{
		Title: fmt.Sprintf("Fig. 14 (%s): throughput", label), XLabel: "threads", YLabel: "GB/s",
	}, thr0, thr1))
}
