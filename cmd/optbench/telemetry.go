package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optanesim/internal/bench"
	"optanesim/internal/machine"
	"optanesim/internal/runner"
	"optanesim/internal/sim"
	"optanesim/internal/telemetry"
)

var (
	traceOut      = flag.String("trace-out", "", "write a Chrome trace-event timeline of buffer/controller events to this file")
	eventsOut     = flag.String("events-out", "", "write the structured event stream as JSON lines to this file")
	samplesOut    = flag.String("sample-out", "", "write the gauge time-series (WPQ depth, buffer occupancy, RA/WA) as JSON lines to this file")
	sampleEvery   = flag.Int64("sample-every", int64(telemetry.DefaultSampleEvery), "simulated cycles between gauge samples")
	eventCap      = flag.Int("event-cap", telemetry.DefaultEventCap, "per-unit event ring capacity (most recent events kept)")
	telemetryAddr = flag.String("telemetry-addr", "", "serve live /metrics and /debug/pprof on this address (e.g. :9090) for the duration of the run")
	progress      = flag.Bool("progress", false, "print a per-unit completion line (unit, wall time, sim cycles) to stderr as units finish")
	breakdown     = flag.Bool("breakdown", false, "attribute every op's cycles to latency components and print a per-unit breakdown table")
	histOut       = flag.String("hist-out", "", "write the per-unit attribution histogram summaries as JSON lines to this file (implies -breakdown recording)")
)

// telemetryEnabled reports whether any per-unit recording sink was
// requested. The live endpoint and -progress work without recording.
func telemetryEnabled() bool {
	return *traceOut != "" || *eventsOut != "" || *samplesOut != "" ||
		*breakdown || *histOut != ""
}

// breakdownEnabled reports whether cycle attribution should record.
func breakdownEnabled() bool {
	return *breakdown || *histOut != ""
}

// telemetryFactory builds the per-unit Recorder factory handed to the
// bench layer, or nil when no recording sink is active so the simulator
// hot paths keep their nil probes.
func telemetryFactory() func(unit string) *telemetry.Recorder {
	if !telemetryEnabled() {
		return nil
	}
	cfg := telemetry.Config{
		EventCap:    *eventCap,
		SampleEvery: sim.Cycles(*sampleEvery),
		Breakdown:   breakdownEnabled(),
	}
	return func(unit string) *telemetry.Recorder { return telemetry.NewRecorder(unit, cfg) }
}

// startLive binds the -telemetry-addr endpoint, if requested. It returns
// the Live view (nil when disabled) and a stop function.
func startLive(workers, totalUnits int) (*telemetry.Live, func()) {
	if *telemetryAddr == "" {
		return nil, func() {}
	}
	live := telemetry.NewLive(workers, totalUnits, machine.GlobalStats)
	addr, err := live.Start(*telemetryAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "optbench: telemetry server: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "optbench: serving telemetry on http://%s/metrics (pprof at /debug/pprof/)\n", addr)
	return live, live.Stop
}

// runnerHooks wires -progress reporting and the live endpoint into the
// worker pool. Progress lines go to stderr in completion order; stdout
// stays byte-identical with and without them.
func runnerHooks(cfg *runner.Config, live *telemetry.Live) {
	if live == nil && !*progress {
		return
	}
	cfg.OnTaskStart = func(id string) {
		if live != nil {
			live.UnitStarted(id)
		}
	}
	cfg.OnTaskDone = func(r runner.Result) {
		var cycles int64
		if ur, ok := r.Value.(bench.UnitResult); ok {
			cycles = int64(ur.SimCycles)
			if live != nil && ur.Telemetry != nil {
				live.ObserveBreakdown(ur.Telemetry.Breakdown)
			}
		}
		if live != nil {
			live.UnitDone(r.ID, r.Elapsed(), cycles, r.Err != nil)
		}
		if *progress {
			status := "done"
			if r.Err != nil {
				status = "FAIL"
			}
			fmt.Fprintf(os.Stderr, "optbench: %s %-24s %12v  %14d sim cycles\n",
				status, r.ID, r.Elapsed().Round(time.Millisecond), cycles)
		}
	}
}

// harvestRecordings collects the units' frozen recordings in submission
// order — the same deterministic order as every other output.
func harvestRecordings(run []string, slots map[string][]int, results []runner.Result) []*telemetry.Recording {
	var recs []*telemetry.Recording
	for _, name := range run {
		for _, i := range slots[name] {
			r := results[i]
			if r.Err != nil {
				continue
			}
			if ur, ok := r.Value.(bench.UnitResult); ok && ur.Telemetry != nil {
				recs = append(recs, ur.Telemetry)
			}
		}
	}
	return recs
}

// writeTelemetrySinks writes every requested export of the recordings.
func writeTelemetrySinks(recs []*telemetry.Recording) error {
	writeTo := func(path string, write func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if *traceOut != "" {
		if err := writeTo(*traceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, recs...)
		}); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	if *eventsOut != "" {
		if err := writeTo(*eventsOut, func(f *os.File) error {
			return telemetry.WriteEventsJSONL(f, recs...)
		}); err != nil {
			return fmt.Errorf("events-out: %w", err)
		}
	}
	if *samplesOut != "" {
		if err := writeTo(*samplesOut, func(f *os.File) error {
			return telemetry.WriteSamplesJSONL(f, recs...)
		}); err != nil {
			return fmt.Errorf("sample-out: %w", err)
		}
	}
	if *histOut != "" {
		if err := writeTo(*histOut, func(f *os.File) error {
			return telemetry.WriteHistsJSONL(f, recs...)
		}); err != nil {
			return fmt.Errorf("hist-out: %w", err)
		}
	}
	return nil
}
