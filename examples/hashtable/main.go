// Hashtable: the §4.1 case study as an application — a CCEH persistent
// hash table under a write-heavy load, with and without the paper's
// speculative helper-thread prefetcher, on PM and on DRAM.
//
// Expected outcome (the paper's C7 claim): the helper improves latency
// and throughput substantially on Optane and does not help on DRAM.
package main

import (
	"fmt"

	"optanesim"
)

const (
	prebuild = 600_000
	inserts  = 8_000
)

func run(onDRAM, helper bool) (cyclesPerInsert float64, ok bool) {
	sys := optanesim.MustNewSystem(optanesim.G1Config(1))

	var heap *optanesim.Heap
	if onDRAM {
		heap = optanesim.NewDRAMHeap(optanesim.CCEHHeapFor(prebuild + 2*inserts))
	} else {
		heap = optanesim.NewPMHeap(optanesim.CCEHHeapFor(prebuild + 2*inserts))
	}
	free := optanesim.NewFreeSession(heap)
	table := optanesim.NewCCEH(free, heap, 8)
	table.InsertBatch(free, optanesim.SequenceKeys(1<<40, prebuild), nil)

	keys := optanesim.SequenceKeys(1<<41, inserts)
	prog := &optanesim.CCEHProgress{}
	var busy optanesim.Cycles
	sys.Go("worker", 0, false, func(t *optanesim.Thread) {
		s := optanesim.NewSession(t, heap)
		start := t.Now()
		table.InsertBatch(s, keys, prog)
		busy = t.Now() - start
	})
	if helper {
		sys.Go("helper", 0, false, func(t *optanesim.Thread) {
			s := optanesim.NewSession(t, heap)
			table.Helper(s, keys, prog)
		})
	}
	sys.Run()

	// Verify the data structure actually contains everything.
	for _, k := range keys {
		if _, found := table.Lookup(free, k); !found {
			return 0, false
		}
	}
	return float64(busy) / float64(inserts), true
}

func main() {
	for _, dev := range []struct {
		name   string
		onDRAM bool
	}{{"Optane PM", false}, {"DRAM", true}} {
		base, ok1 := run(dev.onDRAM, false)
		help, ok2 := run(dev.onDRAM, true)
		if !ok1 || !ok2 {
			fmt.Printf("%s: verification FAILED\n", dev.name)
			continue
		}
		delta := 100 * (base - help) / base
		fmt.Printf("%-9s  insert latency: %6.0f cycles -> %6.0f with helper (%+.1f%%)\n",
			dev.name, base, help, delta)
	}
	fmt.Println("\nThe helper thread pays off only where random media reads dominate —")
	fmt.Println("on DRAM it merely burns the sibling hyperthread (the paper's Fig. 10).")
}
