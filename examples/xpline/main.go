// Xpline: the §4.3 case study as an application — an XPLine-aligned
// workload (random 256 B blocks, e.g. a 256 B-record store) accessed
// directly versus through the AVX redirection optimization, sweeping the
// thread count to find the crossover where saved misprefetch bandwidth
// beats the extra copy.
package main

import (
	"fmt"

	"optanesim"
)

const (
	regionBytes     = 128 << 20
	blocksPerThread = 3000
)

func run(threads int, optimized bool) (cyclesPerBlock, gbs float64) {
	sys := optanesim.MustNewSystem(optanesim.G1Config(threads))
	heap := optanesim.NewPMHeap(regionBytes)
	region := heap.Alloc(regionBytes-4096, optanesim.XPLineSize)
	dram := optanesim.NewDRAMHeap(uint64(threads+1) * 4096)
	nBlocks := (regionBytes - 8192) / optanesim.XPLineSize

	var busy optanesim.Cycles
	var end optanesim.Cycles
	for w := 0; w < threads; w++ {
		seed := uint64(101 + w)
		sys.Go(fmt.Sprintf("t%d", w), w, false, func(t *optanesim.Thread) {
			st := optanesim.NewXPLineStaging(dram)
			state := seed
			next := func() uint64 {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return state
			}
			start := t.Now()
			for i := 0; i < blocksPerThread; i++ {
				block := region + optanesim.Addr(next()%uint64(nBlocks))*optanesim.XPLineSize
				if optimized {
					optanesim.RedirectedBlockRead(t, block, st)
				} else {
					optanesim.DirectBlockRead(t, block)
				}
			}
			busy += t.Now() - start
			if t.Now() > end {
				end = t.Now()
			}
		})
	}
	sys.Run()
	blocks := threads * blocksPerThread
	secs := sys.CyclesToSeconds(end)
	return float64(busy) / float64(blocks),
		float64(blocks) * optanesim.XPLineSize / secs / 1e9
}

func main() {
	fmt.Println("threads  direct lat   redirected lat   direct GB/s  redirected GB/s")
	for _, th := range []int{1, 2, 4, 8, 12, 16} {
		dLat, dBW := run(th, false)
		rLat, rBW := run(th, true)
		marker := ""
		if rLat < dLat {
			marker = "  <- redirection wins"
		}
		fmt.Printf("%7d  %10.0f   %14.0f   %11.2f  %15.2f%s\n", th, dLat, rLat, dBW, rBW, marker)
	}
	fmt.Println("\nMisprefetched XPLines waste up to half the PM bandwidth; once enough")
	fmt.Println("threads contend for it, copying blocks to DRAM first comes out ahead.")
}
