// Kvstore: a FlatStore-style log-structured KV store (the design the
// paper's related work credits with "coalescing small writes into full
// XPLines") built from this repository's pieces: a CCEH index plus an
// append-only PM value log, comparing per-op persists against
// XPLine-batched appends.
package main

import (
	"fmt"

	"optanesim"
)

const puts = 15000

func run(batched bool) (cyclesPerPut float64, mediaPerPut float64) {
	sys := optanesim.MustNewSystem(optanesim.G1Config(1))
	heap := optanesim.NewPMHeap(optanesim.CCEHHeapFor(puts) + uint64(puts+1024)*64 + (4 << 20))
	free := optanesim.NewFreeSession(heap)
	mode := optanesim.KVPerOp
	if batched {
		mode = optanesim.KVBatched
	}
	store := optanesim.NewKVStore(free, heap, mode, uint64(puts+1024)*64)
	keys := optanesim.SequenceKeys(51, puts)

	var cycles float64
	sys.Go("writer", 0, false, func(t *optanesim.Thread) {
		s := optanesim.NewSession(t, heap)
		start := t.Now()
		for i, k := range keys {
			if err := store.Put(s, k, uint64(i)); err != nil {
				panic(err)
			}
		}
		if err := store.Sync(s); err != nil {
			panic(err)
		}
		cycles = float64(t.Now() - start)
	})
	sys.Run()

	for i, k := range keys {
		if v, ok := store.Get(free, k); !ok || v != uint64(i) {
			panic("verification failed")
		}
	}
	c := sys.PMCounters()
	return cycles / puts, float64(c.MediaWriteBytes) / puts
}

func main() {
	perOpCyc, perOpMedia := run(false)
	batchCyc, batchMedia := run(true)
	fmt.Printf("per-op persists: %6.0f cycles/put, %5.0f media bytes/put\n", perOpCyc, perOpMedia)
	fmt.Printf("XPLine-batched:  %6.0f cycles/put, %5.0f media bytes/put (%.0f%% faster)\n",
		batchCyc, batchMedia, 100*(perOpCyc-batchCyc)/perOpCyc)
	fmt.Println("\nThe on-DIMM write buffer already coalesces sequential appends (§3.2),")
	fmt.Println("so batching's win is in persistence barriers: one fence per XPLine.")
}
