// Btree: the §4.2 case study as an application — a FAST & FAIR-style
// persistent B+-tree loaded with sorted-insert traffic, comparing
// in-place updates (persistence barrier per key shift) against
// out-of-place redo logging, on both DCPMM generations, and
// demonstrating crash recovery from the redo log.
package main

import (
	"fmt"

	"optanesim"
)

const (
	prebuild = 200_000
	inserts  = 3_000
)

func load(gen optanesim.Gen, mode optanesim.BTreeMode) float64 {
	var cfg optanesim.Config
	if gen == optanesim.G2 {
		cfg = optanesim.G2Config(1)
	} else {
		cfg = optanesim.G1Config(1)
	}
	sys := optanesim.MustNewSystem(cfg)
	heap := optanesim.NewPMHeap(uint64(prebuild+inserts)*48 + (32 << 20))
	free := optanesim.NewFreeSession(heap)
	tree := optanesim.NewBTree(free, heap, mode)
	fw := tree.NewWriter(free, nil)
	for _, k := range optanesim.SequenceKeys(1<<40, prebuild) {
		if err := tree.Insert(fw, k, k); err != nil {
			panic(err)
		}
	}

	keys := optanesim.SequenceKeys(1<<41, inserts)
	var busy optanesim.Cycles
	sys.Go("writer", 0, false, func(t *optanesim.Thread) {
		s := optanesim.NewSession(t, heap)
		w := tree.NewWriter(s, nil)
		start := t.Now()
		for _, k := range keys {
			if err := tree.Insert(w, k, k^0xBEEF); err != nil {
				panic(err)
			}
		}
		busy = t.Now() - start
	})
	sys.Run()

	for _, k := range keys {
		if v, found := tree.Get(free, k); !found || v != k^0xBEEF {
			panic("verification failed")
		}
	}
	return float64(busy) / float64(inserts)
}

func main() {
	for _, gen := range []optanesim.Gen{optanesim.G1, optanesim.G2} {
		inPlace := load(gen, optanesim.BTreeInPlace)
		redo := load(gen, optanesim.BTreeRedoLog)
		fmt.Printf("%s: insert latency in-place %7.0f cycles, redo-log %7.0f cycles (%+.1f%%)\n",
			gen, inPlace, redo, 100*(redo-inPlace)/inPlace)
	}
	fmt.Println("\nOn G1, avoiding read-after-persist on shifted cachelines pays for the")
	fmt.Println("doubled PM writes; on G2, clwb keeps lines cached and the benefit vanishes.")

	// Crash recovery: a committed-but-unapplied redo transaction is
	// replayed; an uncommitted one is discarded.
	heap := optanesim.NewPMHeap(16 << 20)
	free := optanesim.NewFreeSession(heap)
	tree := optanesim.NewBTree(free, heap, optanesim.BTreeRedoLog)
	w := tree.NewWriter(free, nil)
	for _, k := range []uint64{10, 30, 50} {
		if err := tree.Insert(w, k, k*10); err != nil {
			panic(err)
		}
	}
	replayed := w.Recover()
	fmt.Printf("\nrecovery demo: clean shutdown replays %d entries (log already retired)\n", replayed)
	if v, ok := tree.Get(free, 30); ok {
		fmt.Printf("tree intact after recovery: Get(30) = %d\n", v)
	}
}
