// Quickstart: build a simulated G1 Optane testbed, run the paper's
// canonical persistent access pattern (random read, update, persist) and
// print the application-perceived latency plus the on-DIMM traffic the
// paper derives its read/write-amplification metrics from.
package main

import (
	"fmt"

	"optanesim"
)

func main() {
	// One core, one 128 GB-class Optane DIMM, all prefetchers on.
	sys := optanesim.MustNewSystem(optanesim.G1Config(1))

	// A 64 MB persistent region — far beyond the 16 KB on-DIMM buffers
	// and the 27.5 MB LLC, so accesses behave like a large data store.
	const regionBytes = 64 << 20
	heap := optanesim.NewPMHeap(regionBytes)
	region := heap.Alloc(regionBytes-4096, optanesim.XPLineSize)

	const ops = 20000
	var perOp float64
	sys.Go("worker", 0, false, func(t *optanesim.Thread) {
		s := optanesim.NewSession(t, heap)
		// Simple xorshift so the example stays dependency-free.
		state := uint64(0x9E3779B97F4A7C15)
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		start := t.Now()
		for i := 0; i < ops; i++ {
			addr := region + optanesim.Addr(next()%(regionBytes-512))
			addr = addr - addr%optanesim.XPLineSize

			// The pointer-chase-plus-persist pattern of §3.6: read the
			// element header, update one cacheline, persist it.
			v := s.Load64(addr)
			s.Store64(addr+64, v+1)
			s.Persist(addr+64, 8)
		}
		perOp = float64(t.Now()-start) / ops
	})
	total := sys.Run()

	c := sys.PMCounters()
	fmt.Printf("simulated %d read-update-persist ops in %d cycles\n", ops, total)
	fmt.Printf("  latency per op:        %.0f cycles (random media read dominates)\n", perOp)
	fmt.Printf("  demand read/write:     %d / %d bytes\n", c.DemandReadBytes, c.DemandWriteBytes)
	fmt.Printf("  iMC    read/write:     %d / %d bytes\n", c.IMCReadBytes, c.IMCWriteBytes)
	fmt.Printf("  media  read/write:     %d / %d bytes\n", c.MediaReadBytes, c.MediaWriteBytes)
	fmt.Printf("  read amplification:    %.2f\n", c.RA())
	fmt.Printf("  write amplification:   %.2f (64 B persists -> 256 B XPLine RMWs)\n", c.WA())
	fmt.Println("\nfull activity report:")
	fmt.Print(sys.Report())
}
